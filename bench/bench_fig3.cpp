// Fig. 3 reproduction: EPS architectures synthesized with ILP-AR for a
// ladder of reliability requirements.
//
// Paper (21-node template): (a) r* = 2e-3  -> r~ = 6.0e-4,  r = 6e-4
//                           (b) r* = 2e-6  -> r~ = 2.4e-7,  r = 3.5e-7
//                           (c) r* = 2e-10 -> r~ = 7.2e-11, r = 2.8e-10
// The pattern to reproduce: tighter r* -> more redundant paths and higher
// cost; the algebra estimate r~ tracks the exact r closely (slightly
// optimistic, within the Theorem-2 bound); r~ jumps in discrete steps
// h * p^h as the synthesized degree of redundancy h increases.
//
// Here: 11-node template (g = 2; ILP-AR's monolithic model is the expensive
// one — see Table III) with r* in {2e-3, 2e-6, 2e-7}; the 2e-7 step forces
// the maximum redundancy this template offers, playing the role of Fig. 3c.
// `--method=<factoring|inclusion-exclusion|series-parallel|bdd>` selects the
// exact analyzer the "r (exact)" column is computed with.
#include <cstdio>
#include <cstring>

#include "core/ilp_ar.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace archex;
  rel::ExactMethod method = rel::ExactMethod::kFactoring;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--method=", 9) == 0) {
      const auto parsed = rel::parse_exact_method(argv[i] + 9);
      if (!parsed) {
        std::fprintf(stderr, "unknown --method '%s' (want factoring, "
                     "inclusion-exclusion, series-parallel, or bdd)\n",
                     argv[i] + 9);
        return 1;
      }
      method = *parsed;
    }
  }
  std::printf("=== Fig. 3: ILP-AR syntheses across reliability targets "
              "(exact method: %s) ===\n\n",
              rel::to_string(method).c_str());

  eps::EpsSpec spec;
  spec.num_generators = 2;
  const eps::EpsTemplate eps = eps::make_eps_template(spec);
  std::printf("EPS template: |V| = %d, %d candidate interconnections\n\n",
              eps.tmpl.num_components(), eps.tmpl.num_candidate_edges());

  TextTable table({"r* (required)", "status", "cost", "components",
                   "interconnections", "r~ (algebra)", "r (exact)",
                   "solver s"});

  for (const double target : {2e-3, 2e-6, 2e-7}) {
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);
    ilp::BranchAndBoundOptions bopt;
    bopt.time_limit_seconds = 240.0;
    ilp::BranchAndBoundSolver solver(bopt);
    core::IlpArOptions options;
    options.target_failure = target;
    options.method = method;
    options.accept_incumbent = true;
    const core::IlpArReport rep = core::run_ilp_ar(ilp, solver, options);

    if (rep.configuration) {
      table.add_row({format_sci(target, 1), to_string(rep.status),
                     format_fixed(rep.configuration->total_cost(), 0),
                     format_count(rep.configuration->num_used_nodes()),
                     format_count(rep.configuration->num_selected_edges()),
                     format_sci(rep.approx_failure, 2),
                     format_sci(rep.exact_failure, 2),
                     format_fixed(rep.solver_seconds, 1)});
    } else {
      table.add_row({format_sci(target, 1), to_string(rep.status), "-", "-",
                     "-", "-", "-", format_fixed(rep.solver_seconds, 1)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\npaper reference (21 nodes, CPLEX): r*=2e-3 -> (6.0e-4, 6e-4); "
            "r*=2e-6 -> (2.4e-7, 3.5e-7); r*=2e-10 -> (7.2e-11, 2.8e-10).");
  std::puts("expected shape: cost and redundancy increase monotonically; "
            "r~ <= r* with r~ slightly below the exact r.");
  return 0;
}
