// Table III reproduction: ILP-AR problem size and timing across template
// sizes.
//
// Paper (r* = 1e-11, n = 5 types, CPLEX):
//   |V| (gens)   #constraints   setup (s)   solver (s)
//   20 (4)          5 290           27          11
//   30 (6)         24 514          402          77
//   40 (8)         74 258        3 341         494
//   50 (10)       176 794       18 902       5 059
//
// The headline: the monolithic encoding (9)-(11) grows polynomially but
// steeply (O(|V|^3 n) worst case), and both generation and solving blow up
// with size — this is exactly why ILP-MR wins on larger templates. We
// regenerate the encoding for g = 1..6 (|V| = 6..31), report constraint
// counts and setup times for all sizes, and run the full solve on the sizes
// the bundled B&B handles in bounded time (g <= 2).
#include <cstdio>

#include "core/ilp_ar.hpp"
#include "eps/eps_template.hpp"
#include "ilp/solver.hpp"
#include "support/table.hpp"

int main() {
  using namespace archex;
  std::puts("=== Table III: ILP-AR constraints / setup / solve ===\n");

  TextTable table({"|V| (gens)", "#constraints", "#variables", "setup (s)",
                   "solver (s)", "status"});

  for (const int g : {1, 2, 3, 4, 5, 6}) {
    eps::EpsSpec spec;
    spec.num_generators = g;
    const eps::EpsTemplate eps = eps::make_eps_template(spec);
    core::ArchitectureIlp ilp = eps::make_eps_ilp(eps);

    core::IlpArOptions options;
    // The paper's 1e-11 exceeds what the small templates can reach; the
    // encoding size is requirement-independent, so a per-size achievable
    // target keeps the solve step meaningful.
    options.target_failure = g >= 3 ? 1e-10 : (g == 2 ? 1e-6 : 1e-3);

    if (g <= 2) {
      ilp::BranchAndBoundOptions bopt;
      bopt.time_limit_seconds = 300.0;
      ilp::BranchAndBoundSolver solver(bopt);
      options.accept_incumbent = true;
      const core::IlpArReport rep = core::run_ilp_ar(ilp, solver, options);
      table.add_row({std::to_string(5 * g + 1) + " (" + std::to_string(g) +
                         ")",
                     format_count(rep.num_constraints),
                     format_count(rep.num_variables),
                     format_fixed(rep.setup_seconds, 3),
                     format_fixed(rep.solver_seconds, 1),
                     to_string(rep.status)});
    } else {
      const core::IlpArSize size = core::encode_ilp_ar(ilp, options);
      table.add_row({std::to_string(5 * g + 1) + " (" + std::to_string(g) +
                         ")",
                     format_count(ilp.model().num_rows()),
                     format_count(ilp.model().num_variables()),
                     format_fixed(size.setup_seconds, 3), "-",
                     "encode-only"});
    }
    std::fputs(table.to_string().c_str(), stdout);
    std::puts("");
  }

  std::puts("expected shape (paper): constraint count and setup time grow "
            "super-linearly with |V|; solves quickly become the dominant "
            "cost — the regime where ILP-MR is preferable.");
  return 0;
}
