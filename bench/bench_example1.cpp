// Example 1 of the paper: approximate reliability algebra vs. exact failure
// probability on the Fig. 1b architecture (two disjoint G->B->D->L chains).
//
// Paper values (uniform p, small): r~ = p + 6p^2,  r = p + 9p^2 + O(p^3);
// with p = 2e-4 on G/B/D and a perfect load:
//   r~_L = p_L + 2p_D^2 + 2p_B^2 + 2p_G^2.
//
// This harness sweeps p and prints the algebra estimate, the exact value
// (factoring analyzer), their ratio and the Theorem-2 lower bound on the
// ratio — the estimate must stay within [bound, 1+] of exact.
#include <cstdio>

#include "graph/digraph.hpp"
#include "graph/partition.hpp"
#include "rel/approx.hpp"
#include "rel/exact.hpp"
#include "support/table.hpp"

namespace {

using namespace archex;

struct Example1 {
  graph::Digraph g{7};
  graph::Partition part{{0, 0, 1, 1, 2, 2, 3}};
  Example1() {
    // G1=0 G2=1 B1=2 B2=3 D1=4 D2=5 L=6.
    g.add_edge(0, 2);
    g.add_edge(2, 4);
    g.add_edge(4, 6);
    g.add_edge(1, 3);
    g.add_edge(3, 5);
    g.add_edge(5, 6);
  }
};

}  // namespace

int main() {
  std::puts("=== Example 1: approximate algebra vs exact failure ===");
  std::puts("architecture: Fig. 1b — two disjoint G->B->D->L chains\n");

  const Example1 ex;
  TextTable table({"p (per comp.)", "r~ (eq. 7)", "r (exact)", "r~ / r",
                   "Thm-2 bound", "p+6p^2", "p+9p^2"});

  for (const double p : {1e-1, 1e-2, 1e-3, 1e-4, 2e-4, 1e-5}) {
    const std::vector<double> p_type{p, p, p, p};
    const std::vector<double> p_node(7, p);
    const rel::ApproxResult a =
        rel::approximate_failure(ex.g, ex.part, 6, p_type);
    const double r = rel::failure_probability(ex.g, {0, 1}, 6, p_node);
    table.add_row({format_sci(p, 0), format_sci(a.r_tilde, 3),
                   format_sci(r, 3), format_fixed(a.r_tilde / r, 4),
                   format_fixed(a.optimism_bound, 4),
                   format_sci(p + 6 * p * p, 3),
                   format_sci(p + 9 * p * p, 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // The paper's exact parameterization: p = 2e-4 on G/B/D, perfect load.
  const double p = 2e-4;
  const rel::ApproxResult a =
      rel::approximate_failure(ex.g, ex.part, 6, {p, p, p, 0.0});
  const double r =
      rel::failure_probability(ex.g, {0, 1}, 6, {p, p, p, p, p, p, 0.0});
  std::printf("\npaper parameterization (p=2e-4, perfect load):\n"
              "  r~ = %.6e  (expected 2p_D^2+2p_B^2+2p_G^2 = %.6e)\n"
              "  r  = %.6e\n",
              a.r_tilde, 6 * p * p, r);
  return 0;
}
