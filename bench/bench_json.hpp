// archex/bench/bench_json.hpp
//
// Machine-readable benchmark output: each bench executable owns one
// top-level section of BENCH_solver.json and rewrites only that section,
// so `bench_table2` and `bench_solver_ablation` (and future harnesses) can
// append to the same file in any order without clobbering each other.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <utility>

#include "support/json.hpp"

namespace archex::bench {

/// Merge `payload` into the JSON object stored at `path` under key
/// `section`, creating the file (or replacing unparseable content) as
/// needed. Returns false when the file cannot be written.
inline bool write_bench_section(const std::string& path,
                                const std::string& section,
                                json::Value payload) {
  json::Object root;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buffer;
      buffer << in.rdbuf();
      try {
        const json::Value existing = json::parse(buffer.str());
        if (existing.is_object()) root = existing.as_object();
      } catch (const json::JsonError&) {
        // Corrupt or hand-edited file: start over with just our section.
      }
    }
  }
  root[section] = std::move(payload);
  std::ofstream out(path);
  if (!out) return false;
  out << json::dump(json::Value(std::move(root)), 2) << "\n";
  return static_cast<bool>(out);
}

}  // namespace archex::bench
