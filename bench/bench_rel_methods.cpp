// Ablation: the two exact K-terminal reliability analyzers. Factoring
// (pivot decomposition with reachability pruning) vs. inclusion–exclusion
// over minimal path sets, on EPS-shaped parallel-chain architectures with a
// growing number of redundant paths. Inclusion–exclusion is 2^f in the path
// count f; factoring rides the graph structure. google-benchmark timings.
//
// Interpretation notes (see EXPERIMENTS.md):
//  * factoring grows ~3^k in the chain count k on fully parallel systems —
//    exact analysis is exponential, which is the paper's very motivation
//    for calling RELANALYSIS "only when needed";
//  * inclusion–exclusion is faster here but its alternating sum suffers
//    catastrophic cancellation once the true failure probability falls
//    below ~1e-14 with many paths (it can even go negative) — factoring
//    keeps full precision, which is why it is the default method.
//
// `--threads N` (default 1) sizes the worker pool used by the *Parallel/
// *Accelerated variants and the headline report printed before the
// google-benchmark table: a synthesis-style workload (repeated evaluation of
// the largest EPS-shaped instance) run serially and then with the
// cache+pool context, with the speedup, the cache hit rate, and a
// bit-identity check of the two result streams.
//
// `--order=<topo|bfs|degree>` selects the variable-ordering heuristic the
// BDD benchmarks compile with (default topo). Independent of the flag, the
// headline report prints a per-ordering peak-BDD-size ablation over the
// EPS-shaped instances — the baseline for future ordering work.
//
// The headline measurements (cold-cache BDD vs factoring, BDD engine
// counters, ordering ablation) are also written to BENCH_rel.json through
// the shared section merger (bench/bench_json.hpp), like BENCH_solver.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "graph/digraph.hpp"
#include "rel/bdd_method.hpp"
#include "rel/eval_cache.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace archex;

int g_threads = 1;  // set by --threads before benchmarks run
rel::BddOrdering g_order = rel::BddOrdering::kTopological;  // --order
const char* g_order_name = "topo";

/// `chains` disjoint G->B->D->L chains sharing one sink, plus cross edges
/// from every B to every D (raising the path count combinatorially).
struct ParallelChains {
  graph::Digraph g;
  std::vector<graph::NodeId> sources;
  graph::NodeId sink;
  std::vector<double> p;

  explicit ParallelChains(int chains, bool cross)
      : g(3 * chains + 1), sink(3 * chains) {
    for (int c = 0; c < chains; ++c) {
      const int ggen = c;
      const int bus = chains + c;
      const int dc = 2 * chains + c;
      sources.push_back(ggen);
      g.add_edge(ggen, bus);
      g.add_edge(bus, dc);
      g.add_edge(dc, sink);
    }
    if (cross) {
      for (int c = 0; c < chains; ++c) {
        for (int d = 0; d < chains; ++d) {
          if (c != d) g.add_edge(chains + c, 2 * chains + d);
        }
      }
    }
    p.assign(static_cast<std::size_t>(g.num_nodes()), 2e-4);
    p[static_cast<std::size_t>(sink)] = 0.0;
  }
};

void BM_Factoring(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
}

/// Factoring through a shared EvalCache: after the first iteration every
/// pivot subproblem is resident, so this measures the memoized regime a
/// synthesis loop (many near-identical evaluations) operates in.
void BM_FactoringCached(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  rel::EvalCache cache;
  rel::EvalContext ctx;
  ctx.cache = &cache;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 ctx, rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
  state.counters["hit_rate"] = cache.stats().hit_rate();
}

/// Factoring with the recursion tree fanned out over the --threads pool
/// (no cache, to isolate the parallel speedup).
void BM_FactoringParallel(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  support::ThreadPool pool(g_threads);
  rel::EvalContext ctx;
  ctx.pool = &pool;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 ctx, rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
  state.counters["threads"] = g_threads;
}

/// BDD compilation + evaluation, cold: a fresh manager per iteration, the
/// way a synthesis loop meets each new iterate. The counters report the
/// engine state of the last iteration.
void BM_Bdd(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  rel::BddEvalStats stats;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::bdd_failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                     g_order, &stats);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
  state.counters["peak_nodes"] = static_cast<double>(stats.peak_nodes);
  state.counters["final_nodes"] = static_cast<double>(stats.final_nodes);
  state.counters["computed_hit_rate"] = stats.computed_hit_rate;
}

/// kBdd through a shared EvalContext: whole-graph memoization, so every
/// iteration after the first is one canonical-key lookup.
void BM_BddCached(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  rel::EvalCache cache;
  rel::EvalContext ctx;
  ctx.cache = &cache;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 ctx, rel::ExactMethod::kBdd);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
  state.counters["hit_rate"] = cache.stats().hit_rate();
}

void BM_InclusionExclusion(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  double r = 0.0;
  for (auto _ : state) {
    try {
      r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                   rel::ExactMethod::kInclusionExclusion);
    } catch (const archex::Error&) {
      state.SkipWithError("path count exceeds inclusion-exclusion limit");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
}

void BM_MonteCarlo100k(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  Rng rng(7);
  double r = 0.0;
  for (auto _ : state) {
    r = rel::monte_carlo_failure(arch.g, arch.sources, arch.sink, arch.p,
                                 100000, rng)
            .estimate;
    benchmark::DoNotOptimize(r);
  }
  state.counters["estimate"] = r;
}

/// Sharded estimator on the --threads pool; bit-identical to the serial
/// sharding for any thread count (see MonteCarloOptions).
void BM_MonteCarloSharded100k(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  support::ThreadPool pool(g_threads);
  rel::MonteCarloOptions opt;
  opt.samples = 100000;
  opt.pool = &pool;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::monte_carlo_failure_sharded(arch.g, arch.sources, arch.sink,
                                         arch.p, opt)
            .estimate;
    benchmark::DoNotOptimize(r);
  }
  state.counters["estimate"] = r;
  state.counters["threads"] = g_threads;
}

// Args: {chains, cross-edges?}. Cross edges multiply the path count:
// f = chains (disjoint) vs f = chains^2 (crossed).
BENCHMARK(BM_Factoring)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({12, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
// {12,0} is omitted from the accelerated variants: its subproblem count
// saturates the default cache capacity (stores get rejected, no payoff) and
// one cold iteration dominates the whole harness run.
BENCHMARK(BM_FactoringCached)
    ->Args({8, 0})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FactoringParallel)
    ->Args({8, 0})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
// The BDD method rides the graph width, so the {12,0} instance that is
// omitted from the accelerated factoring variants is cheap here.
BENCHMARK(BM_Bdd)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({12, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_BddCached)
    ->Args({8, 0})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InclusionExclusion)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({16, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MonteCarlo100k)
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MonteCarloSharded100k)
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

/// Headline acceptance check: a synthesis-style workload — the largest
/// EPS-shaped instance of this harness evaluated `kEvals` times, the way
/// ILP-MR/Pareto re-analyze near-identical iterates — serial vs the
/// cache+pool context. Prints speedup, hit rate, and a bit-identity verdict.
/// Returns the measurements for the BENCH_rel.json section.
json::Object report_headline_speedup() {
  constexpr int kEvals = 8;
  const ParallelChains arch(6, /*cross=*/true);

  Stopwatch serial_watch;
  serial_watch.start();
  std::vector<double> serial;
  serial.reserve(kEvals);
  for (int i = 0; i < kEvals; ++i) {
    serial.push_back(rel::failure_probability(arch.g, arch.sources, arch.sink,
                                              arch.p));
  }
  serial_watch.stop();

  support::ThreadPool pool(g_threads);
  rel::EvalCache cache;
  rel::EvalContext ctx;
  ctx.cache = &cache;
  ctx.pool = &pool;
  Stopwatch accel_watch;
  accel_watch.start();
  std::vector<double> accelerated;
  accelerated.reserve(kEvals);
  for (int i = 0; i < kEvals; ++i) {
    accelerated.push_back(rel::failure_probability(
        arch.g, arch.sources, arch.sink, arch.p, ctx));
  }
  accel_watch.stop();

  bool identical = true;
  for (int i = 0; i < kEvals; ++i) {
    if (serial[static_cast<std::size_t>(i)] !=
        accelerated[static_cast<std::size_t>(i)]) {
      identical = false;
    }
  }
  const auto stats = cache.stats();
  std::printf(
      "=== headline: %d evaluations of the largest EPS-shaped instance "
      "(chains=6, crossed) ===\n"
      "serial (no cache, no pool): %.3f s\n"
      "accelerated (--threads %d + cache): %.3f s  -> speedup %.2fx\n"
      "cache: %llu hits / %llu misses (hit rate %.1f%%), %zu entries\n"
      "parallel results identical to serial: %s\n\n",
      kEvals, serial_watch.elapsed_seconds(), g_threads,
      accel_watch.elapsed_seconds(),
      serial_watch.elapsed_seconds() /
          std::max(accel_watch.elapsed_seconds(), 1e-12),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), 100.0 * stats.hit_rate(),
      stats.size, identical ? "yes" : "NO (determinism contract violated)");

  json::Object out;
  out["evals"] = kEvals;
  out["threads"] = g_threads;
  out["serial_seconds"] = serial_watch.elapsed_seconds();
  out["accelerated_seconds"] = accel_watch.elapsed_seconds();
  out["cache_hit_rate"] = stats.hit_rate();
  out["bit_identical"] = identical;
  return out;
}

/// BDD acceptance + ablation report over the EPS-shaped instances: cold
/// kBdd vs cold kFactoring (one evaluation each), the BDD engine counters,
/// and the peak-node ablation across the three ordering heuristics.
json::Object report_bdd(json::Array& ablation_rows) {
  struct Instance {
    int chains;
    bool cross;
  };
  // The last entry is the harness's largest EPS-shaped instance — the one
  // the acceptance criterion (BDD at least as fast as cold factoring)
  // is checked on.
  const std::vector<Instance> instances{{2, false}, {4, false}, {8, false},
                                        {12, false}, {2, true}, {3, true},
                                        {4, true},  {6, true}};

  std::printf("=== BDD method (--order=%s): cold evaluation vs factoring, "
              "engine counters, ordering ablation ===\n"
              "%8s %6s | %12s %12s %8s | %10s %10s %8s %8s | %10s %10s %10s\n",
              g_order_name, "chains", "cross", "factor (ms)", "bdd (ms)",
              "speedup", "peak", "final", "uniq occ", "cmp hit", "topo peak",
              "bfs peak", "deg peak");

  json::Array rows;
  for (const Instance& inst : instances) {
    const ParallelChains arch(inst.chains, inst.cross);

    Stopwatch fw;
    fw.start();
    const double rf = rel::failure_probability(
        arch.g, arch.sources, arch.sink, arch.p, rel::ExactMethod::kFactoring);
    fw.stop();

    rel::BddEvalStats stats;
    Stopwatch bw;
    bw.start();
    const double rb = rel::bdd_failure_probability(
        arch.g, arch.sources, arch.sink, arch.p, g_order, &stats);
    bw.stop();

    // Ordering ablation: peak node count of each heuristic on this
    // instance (the compilation is rerun; timings above stay untouched).
    json::Object peaks;
    std::size_t peak_of[3] = {0, 0, 0};
    const rel::BddOrdering orders[3] = {rel::BddOrdering::kTopological,
                                        rel::BddOrdering::kBfsLevel,
                                        rel::BddOrdering::kDegree};
    const char* order_names[3] = {"topo", "bfs", "degree"};
    for (int k = 0; k < 3; ++k) {
      rel::BddEvalStats s;
      (void)rel::bdd_failure_probability(arch.g, arch.sources, arch.sink,
                                         arch.p, orders[k], &s);
      peak_of[k] = s.peak_nodes;
      peaks[order_names[k]] = static_cast<long long>(s.peak_nodes);
    }

    std::printf("%8d %6s | %12.3f %12.3f %8.1fx | %10zu %10zu %8.3f %8.3f "
                "| %10zu %10zu %10zu\n",
                inst.chains, inst.cross ? "yes" : "no",
                1e3 * fw.elapsed_seconds(), 1e3 * bw.elapsed_seconds(),
                fw.elapsed_seconds() / std::max(bw.elapsed_seconds(), 1e-12),
                stats.peak_nodes, stats.final_nodes, stats.unique_occupancy,
                stats.computed_hit_rate, peak_of[0], peak_of[1], peak_of[2]);

    json::Object row;
    row["chains"] = inst.chains;
    row["cross"] = inst.cross;
    row["factoring_cold_seconds"] = fw.elapsed_seconds();
    row["bdd_cold_seconds"] = bw.elapsed_seconds();
    row["abs_diff"] = std::fabs(rf - rb);
    json::Object engine;
    engine["num_vars"] = stats.num_vars;
    engine["nodes_allocated"] = static_cast<long long>(stats.peak_nodes);
    engine["final_nodes"] = static_cast<long long>(stats.final_nodes);
    engine["unique_occupancy"] = stats.unique_occupancy;
    engine["computed_hit_rate"] = stats.computed_hit_rate;
    row["bdd"] = std::move(engine);
    rows.push_back(std::move(row));

    json::Object ablation;
    ablation["chains"] = inst.chains;
    ablation["cross"] = inst.cross;
    ablation["peak_nodes"] = std::move(peaks);
    ablation_rows.push_back(std::move(ablation));
  }

  const json::Object& largest = rows.back().as_object();
  std::printf("\nlargest instance: bdd %.3f ms vs factoring %.3f ms (cold), "
              "|r_bdd - r_factoring| = %.3g\n\n",
              1e3 * largest.at("bdd_cold_seconds").as_number(),
              1e3 * largest.at("factoring_cold_seconds").as_number(),
              largest.at("abs_diff").as_number());

  json::Object out;
  out["order"] = g_order_name;
  out["instances"] = std::move(rows);
  return out;
}

}  // namespace

bool set_order(const char* name) {
  if (std::strcmp(name, "topo") == 0) {
    g_order = rel::BddOrdering::kTopological;
  } else if (std::strcmp(name, "bfs") == 0) {
    g_order = rel::BddOrdering::kBfsLevel;
  } else if (std::strcmp(name, "degree") == 0) {
    g_order = rel::BddOrdering::kDegree;
  } else {
    std::fprintf(stderr, "unknown --order '%s' (want topo, bfs, or degree)\n",
                 name);
    return false;
  }
  g_order_name = name;
  return true;
}

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--order=", 8) == 0) {
      if (!set_order(argv[i] + 8)) return 1;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (g_threads < 1) g_threads = 1;

  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  json::Object section;
  section["headline"] = report_headline_speedup();
  json::Array ablation;
  section["bdd"] = report_bdd(ablation);
  section["ordering_ablation"] = std::move(ablation);
  if (!bench::write_bench_section("BENCH_rel.json", "rel_methods",
                                  json::Value(std::move(section)))) {
    std::fprintf(stderr, "warning: could not write BENCH_rel.json\n");
  } else {
    std::puts("wrote BENCH_rel.json (section rel_methods)");
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
