// Ablation: the two exact K-terminal reliability analyzers. Factoring
// (pivot decomposition with reachability pruning) vs. inclusion–exclusion
// over minimal path sets, on EPS-shaped parallel-chain architectures with a
// growing number of redundant paths. Inclusion–exclusion is 2^f in the path
// count f; factoring rides the graph structure. google-benchmark timings.
//
// Interpretation notes (see EXPERIMENTS.md):
//  * factoring grows ~3^k in the chain count k on fully parallel systems —
//    exact analysis is exponential, which is the paper's very motivation
//    for calling RELANALYSIS "only when needed";
//  * inclusion–exclusion is faster here but its alternating sum suffers
//    catastrophic cancellation once the true failure probability falls
//    below ~1e-14 with many paths (it can even go negative) — factoring
//    keeps full precision, which is why it is the default method.
#include <benchmark/benchmark.h>

#include "graph/digraph.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "support/rng.hpp"

namespace {

using namespace archex;

/// `chains` disjoint G->B->D->L chains sharing one sink, plus cross edges
/// from every B to every D (raising the path count combinatorially).
struct ParallelChains {
  graph::Digraph g;
  std::vector<graph::NodeId> sources;
  graph::NodeId sink;
  std::vector<double> p;

  explicit ParallelChains(int chains, bool cross)
      : g(3 * chains + 1), sink(3 * chains) {
    for (int c = 0; c < chains; ++c) {
      const int ggen = c;
      const int bus = chains + c;
      const int dc = 2 * chains + c;
      sources.push_back(ggen);
      g.add_edge(ggen, bus);
      g.add_edge(bus, dc);
      g.add_edge(dc, sink);
    }
    if (cross) {
      for (int c = 0; c < chains; ++c) {
        for (int d = 0; d < chains; ++d) {
          if (c != d) g.add_edge(chains + c, 2 * chains + d);
        }
      }
    }
    p.assign(static_cast<std::size_t>(g.num_nodes()), 2e-4);
    p[static_cast<std::size_t>(sink)] = 0.0;
  }
};

void BM_Factoring(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
}

void BM_InclusionExclusion(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  double r = 0.0;
  for (auto _ : state) {
    try {
      r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                   rel::ExactMethod::kInclusionExclusion);
    } catch (const archex::Error&) {
      state.SkipWithError("path count exceeds inclusion-exclusion limit");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
}

void BM_MonteCarlo100k(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  Rng rng(7);
  double r = 0.0;
  for (auto _ : state) {
    r = rel::monte_carlo_failure(arch.g, arch.sources, arch.sink, arch.p,
                                 100000, rng)
            .estimate;
    benchmark::DoNotOptimize(r);
  }
  state.counters["estimate"] = r;
}

// Args: {chains, cross-edges?}. Cross edges multiply the path count:
// f = chains (disjoint) vs f = chains^2 (crossed).
BENCHMARK(BM_Factoring)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({12, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InclusionExclusion)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({16, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MonteCarlo100k)
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
