// Ablation: the two exact K-terminal reliability analyzers. Factoring
// (pivot decomposition with reachability pruning) vs. inclusion–exclusion
// over minimal path sets, on EPS-shaped parallel-chain architectures with a
// growing number of redundant paths. Inclusion–exclusion is 2^f in the path
// count f; factoring rides the graph structure. google-benchmark timings.
//
// Interpretation notes (see EXPERIMENTS.md):
//  * factoring grows ~3^k in the chain count k on fully parallel systems —
//    exact analysis is exponential, which is the paper's very motivation
//    for calling RELANALYSIS "only when needed";
//  * inclusion–exclusion is faster here but its alternating sum suffers
//    catastrophic cancellation once the true failure probability falls
//    below ~1e-14 with many paths (it can even go negative) — factoring
//    keeps full precision, which is why it is the default method.
//
// `--threads N` (default 1) sizes the worker pool used by the *Parallel/
// *Accelerated variants and the headline report printed before the
// google-benchmark table: a synthesis-style workload (repeated evaluation of
// the largest EPS-shaped instance) run serially and then with the
// cache+pool context, with the speedup, the cache hit rate, and a
// bit-identity check of the two result streams.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "graph/digraph.hpp"
#include "rel/eval_cache.hpp"
#include "rel/exact.hpp"
#include "rel/monte_carlo.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace archex;

int g_threads = 1;  // set by --threads before benchmarks run

/// `chains` disjoint G->B->D->L chains sharing one sink, plus cross edges
/// from every B to every D (raising the path count combinatorially).
struct ParallelChains {
  graph::Digraph g;
  std::vector<graph::NodeId> sources;
  graph::NodeId sink;
  std::vector<double> p;

  explicit ParallelChains(int chains, bool cross)
      : g(3 * chains + 1), sink(3 * chains) {
    for (int c = 0; c < chains; ++c) {
      const int ggen = c;
      const int bus = chains + c;
      const int dc = 2 * chains + c;
      sources.push_back(ggen);
      g.add_edge(ggen, bus);
      g.add_edge(bus, dc);
      g.add_edge(dc, sink);
    }
    if (cross) {
      for (int c = 0; c < chains; ++c) {
        for (int d = 0; d < chains; ++d) {
          if (c != d) g.add_edge(chains + c, 2 * chains + d);
        }
      }
    }
    p.assign(static_cast<std::size_t>(g.num_nodes()), 2e-4);
    p[static_cast<std::size_t>(sink)] = 0.0;
  }
};

void BM_Factoring(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
}

/// Factoring through a shared EvalCache: after the first iteration every
/// pivot subproblem is resident, so this measures the memoized regime a
/// synthesis loop (many near-identical evaluations) operates in.
void BM_FactoringCached(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  rel::EvalCache cache;
  rel::EvalContext ctx;
  ctx.cache = &cache;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 ctx, rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
  state.counters["hit_rate"] = cache.stats().hit_rate();
}

/// Factoring with the recursion tree fanned out over the --threads pool
/// (no cache, to isolate the parallel speedup).
void BM_FactoringParallel(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  support::ThreadPool pool(g_threads);
  rel::EvalContext ctx;
  ctx.pool = &pool;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                 ctx, rel::ExactMethod::kFactoring);
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
  state.counters["threads"] = g_threads;
}

void BM_InclusionExclusion(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  double r = 0.0;
  for (auto _ : state) {
    try {
      r = rel::failure_probability(arch.g, arch.sources, arch.sink, arch.p,
                                   rel::ExactMethod::kInclusionExclusion);
    } catch (const archex::Error&) {
      state.SkipWithError("path count exceeds inclusion-exclusion limit");
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["failure"] = r;
}

void BM_MonteCarlo100k(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  Rng rng(7);
  double r = 0.0;
  for (auto _ : state) {
    r = rel::monte_carlo_failure(arch.g, arch.sources, arch.sink, arch.p,
                                 100000, rng)
            .estimate;
    benchmark::DoNotOptimize(r);
  }
  state.counters["estimate"] = r;
}

/// Sharded estimator on the --threads pool; bit-identical to the serial
/// sharding for any thread count (see MonteCarloOptions).
void BM_MonteCarloSharded100k(benchmark::State& state) {
  const ParallelChains arch(static_cast<int>(state.range(0)),
                            state.range(1) != 0);
  support::ThreadPool pool(g_threads);
  rel::MonteCarloOptions opt;
  opt.samples = 100000;
  opt.pool = &pool;
  double r = 0.0;
  for (auto _ : state) {
    r = rel::monte_carlo_failure_sharded(arch.g, arch.sources, arch.sink,
                                         arch.p, opt)
            .estimate;
    benchmark::DoNotOptimize(r);
  }
  state.counters["estimate"] = r;
  state.counters["threads"] = g_threads;
}

// Args: {chains, cross-edges?}. Cross edges multiply the path count:
// f = chains (disjoint) vs f = chains^2 (crossed).
BENCHMARK(BM_Factoring)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({12, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
// {12,0} is omitted from the accelerated variants: its subproblem count
// saturates the default cache capacity (stores get rejected, no payoff) and
// one cold iteration dominates the whole harness run.
BENCHMARK(BM_FactoringCached)
    ->Args({8, 0})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_FactoringParallel)
    ->Args({8, 0})->Args({4, 1})->Args({6, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_InclusionExclusion)
    ->Args({2, 0})->Args({4, 0})->Args({8, 0})->Args({16, 0})
    ->Args({2, 1})->Args({3, 1})->Args({4, 1})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MonteCarlo100k)
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MonteCarloSharded100k)
    ->Args({4, 0})->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

/// Headline acceptance check: a synthesis-style workload — the largest
/// EPS-shaped instance of this harness evaluated `kEvals` times, the way
/// ILP-MR/Pareto re-analyze near-identical iterates — serial vs the
/// cache+pool context. Prints speedup, hit rate, and a bit-identity verdict.
void report_headline_speedup() {
  constexpr int kEvals = 8;
  const ParallelChains arch(6, /*cross=*/true);

  Stopwatch serial_watch;
  serial_watch.start();
  std::vector<double> serial;
  serial.reserve(kEvals);
  for (int i = 0; i < kEvals; ++i) {
    serial.push_back(rel::failure_probability(arch.g, arch.sources, arch.sink,
                                              arch.p));
  }
  serial_watch.stop();

  support::ThreadPool pool(g_threads);
  rel::EvalCache cache;
  rel::EvalContext ctx{&cache, &pool};
  Stopwatch accel_watch;
  accel_watch.start();
  std::vector<double> accelerated;
  accelerated.reserve(kEvals);
  for (int i = 0; i < kEvals; ++i) {
    accelerated.push_back(rel::failure_probability(
        arch.g, arch.sources, arch.sink, arch.p, ctx));
  }
  accel_watch.stop();

  bool identical = true;
  for (int i = 0; i < kEvals; ++i) {
    if (serial[static_cast<std::size_t>(i)] !=
        accelerated[static_cast<std::size_t>(i)]) {
      identical = false;
    }
  }
  const auto stats = cache.stats();
  std::printf(
      "=== headline: %d evaluations of the largest EPS-shaped instance "
      "(chains=6, crossed) ===\n"
      "serial (no cache, no pool): %.3f s\n"
      "accelerated (--threads %d + cache): %.3f s  -> speedup %.2fx\n"
      "cache: %llu hits / %llu misses (hit rate %.1f%%), %zu entries\n"
      "parallel results identical to serial: %s\n\n",
      kEvals, serial_watch.elapsed_seconds(), g_threads,
      accel_watch.elapsed_seconds(),
      serial_watch.elapsed_seconds() /
          std::max(accel_watch.elapsed_seconds(), 1e-12),
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses), 100.0 * stats.hit_rate(),
      stats.size, identical ? "yes" : "NO (determinism contract violated)");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      g_threads = std::atoi(argv[++i]);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = std::atoi(argv[i] + 10);
    } else {
      args.push_back(argv[i]);
    }
  }
  if (g_threads < 1) g_threads = 1;

  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  report_headline_speedup();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
